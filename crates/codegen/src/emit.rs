//! Structural kernel-plan emission.
//!
//! The emitted text is the reproduction's analogue of the generated Vitis HLS
//! project: a deterministic, human-reviewable description of every PE, FIFO,
//! on-chip memory and interface the design instantiates, in dataflow order.
//! It exists so that the "FPGA code generation — within seconds" row of
//! Table 3 has a concrete artifact, and so tests can assert that the
//! generated structure matches the chosen design point.

use fanns_hwsim::config::SelectArch;
use fanns_hwsim::select::SelectionSpec;

use crate::plan::AcceleratorPlan;

/// Renders the structural kernel plan for an accelerator plan.
pub fn emit_kernel_plan(plan: &AcceleratorPlan) -> String {
    let d = &plan.design;
    let p = &plan.params;
    let mut out = String::new();

    out.push_str(&format!(
        "// ===================================================================\n\
         // FANNS generated kernel plan: {}\n\
         // index: {}   nlist={} nprobe={} K={} m={} OPQ={}\n\
         // target clock: {} MHz\n\
         // ===================================================================\n\n",
        plan.name, plan.index_label, p.nlist, p.nprobe, p.k, p.m, p.opq, d.freq_mhz
    ));

    out.push_str(
        "void fanns_kernel(hls::stream<query_t>& query_in, hls::stream<result_t>& result_out) {\n",
    );
    out.push_str("#pragma HLS dataflow\n\n");

    // Stage OPQ.
    if d.sizing.opq_pes > 0 && p.opq {
        out.push_str(&format!(
            "    // Stage OPQ: {} PE(s), rotation matrix held in BRAM\n",
            d.sizing.opq_pes
        ));
        for i in 0..d.sizing.opq_pes {
            out.push_str(&format!("    opq_pe_{i}(query_in, s_opq_{i});\n"));
        }
    } else {
        out.push_str("    // Stage OPQ: bypassed (index has no OPQ rotation)\n");
    }
    out.push('\n');

    // Stage IVFDist.
    out.push_str(&format!(
        "    // Stage IVFDist: {} PE(s), centroid table in {} ({} centroids)\n",
        d.sizing.ivf_dist_pes,
        d.ivf_store.name(),
        p.nlist
    ));
    for i in 0..d.sizing.ivf_dist_pes {
        out.push_str(&format!(
            "    ivf_dist_pe_{i}(s_opq_bcast, s_ivf_dist_{i});\n"
        ));
    }
    out.push('\n');

    // Stage SelCells.
    let sel_cells = SelectionSpec::new(
        d.sel_cells_arch,
        d.sel_cells_streams(),
        p.effective_nprobe(),
    );
    out.push_str(&format!(
        "    // Stage SelCells: {} over {} streams selecting nprobe={} ({} queue registers)\n",
        d.sel_cells_arch.name(),
        d.sel_cells_streams(),
        p.effective_nprobe(),
        sel_cells.priority_queue_registers()
    ));
    out.push_str("    sel_cells_unit(s_ivf_dist, s_cells);\n\n");

    // Stage BuildLUT.
    out.push_str(&format!(
        "    // Stage BuildLUT: {} PE(s), sub-quantizer codebooks in {}\n",
        d.sizing.build_lut_pes,
        d.lut_store.name()
    ));
    for i in 0..d.sizing.build_lut_pes {
        out.push_str(&format!("    build_lut_pe_{i}(s_opq_bcast, s_lut_{i});\n"));
    }
    out.push('\n');

    // Stage PQDist.
    out.push_str(&format!(
        "    // Stage PQDist: {} PE(s), {}-byte PQ codes streamed from HBM\n",
        d.sizing.pq_dist_pes, p.m
    ));
    for i in 0..d.sizing.pq_dist_pes {
        out.push_str(&format!(
            "    pq_dist_pe_{i}(s_cells, s_lut_bcast, hbm_channel_{}, s_dist_{i});\n",
            i % 32
        ));
    }
    out.push('\n');

    // Stage SelK.
    let sel_k = SelectionSpec::new(d.sel_k_arch, d.sel_k_streams(), p.k);
    match d.sel_k_arch {
        SelectArch::Hpq => out.push_str(&format!(
            "    // Stage SelK: HPQ over {} streams, K={} ({} queue registers)\n",
            d.sel_k_streams(),
            p.k,
            sel_k.priority_queue_registers()
        )),
        SelectArch::Hsmpqg => out.push_str(&format!(
            "    // Stage SelK: HSMPQG over {} streams, K={} ({} bitonic sorters of width {}, {} mergers)\n",
            d.sel_k_streams(),
            p.k,
            sel_k.hsmpqg_sorters(),
            sel_k.hsmpqg_width(),
            sel_k.hsmpqg_mergers()
        )),
    }
    out.push_str("    sel_k_unit(s_dist, result_out);\n");
    out.push_str("}\n\n");

    // Memory interface summary.
    out.push_str("// Memory interfaces\n");
    out.push_str(&format!(
        "//   IVF centroid table : {}\n//   PQ codebooks       : {}\n//   PQ code lists      : HBM (32 pseudo-channels)\n",
        d.ivf_store.name(),
        d.lut_store.name()
    ));
    if plan.with_network_stack {
        out.push_str("//   Network            : 100 Gbps hardware TCP/IP stack attached\n");
    } else {
        out.push_str("//   Host link          : PCIe DMA\n");
    }
    if let Some(pred) = &plan.predicted {
        out.push_str(&format!(
            "// Performance model: predicted QPS {:.0}, bottleneck stage {}\n",
            pred.qps,
            pred.bottleneck.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_hwsim::config::{AcceleratorConfig, IndexStore};
    use fanns_ivf::params::IvfPqParams;

    fn make_plan(k: usize, arch: SelectArch) -> AcceleratorPlan {
        let mut design = AcceleratorConfig::balanced();
        design.sel_k_arch = arch;
        design.ivf_store = IndexStore::OnChip;
        AcceleratorPlan::new(
            "unit_test_kernel",
            "OPQ+IVF8192",
            IvfPqParams::new(8192, 17, k).with_m(16).with_opq(true),
            design,
            None,
        )
    }

    #[test]
    fn plan_mentions_every_stage_and_choice() {
        let text = emit_kernel_plan(&make_plan(10, SelectArch::Hpq));
        for token in [
            "Stage OPQ",
            "Stage IVFDist",
            "Stage SelCells",
            "Stage BuildLUT",
            "Stage PQDist",
            "Stage SelK",
            "on-chip",
            "HPQ",
            "unit_test_kernel",
        ] {
            assert!(text.contains(token), "kernel plan missing {token}");
        }
    }

    #[test]
    fn pe_instances_match_design_counts() {
        let plan = make_plan(10, SelectArch::Hpq);
        let text = emit_kernel_plan(&plan);
        let pq_instances = text.matches("pq_dist_pe_").count();
        assert_eq!(pq_instances, plan.design.sizing.pq_dist_pes);
        let ivf_instances = text.matches("ivf_dist_pe_").count();
        assert_eq!(ivf_instances, plan.design.sizing.ivf_dist_pes);
    }

    #[test]
    fn hsmpqg_plans_mention_sorter_geometry() {
        let text = emit_kernel_plan(&make_plan(10, SelectArch::Hsmpqg));
        assert!(text.contains("HSMPQG"));
        assert!(text.contains("bitonic sorters"));
    }

    #[test]
    fn emission_is_deterministic() {
        let plan = make_plan(10, SelectArch::Hpq);
        assert_eq!(emit_kernel_plan(&plan), emit_kernel_plan(&plan));
    }

    #[test]
    fn network_stack_annotation_appears_when_enabled() {
        let plan = make_plan(10, SelectArch::Hpq).with_network_stack(true);
        assert!(emit_kernel_plan(&plan).contains("TCP/IP"));
    }
}
