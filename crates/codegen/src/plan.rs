//! The accelerator plan: everything needed to "build" one accelerator.

use serde::{Deserialize, Serialize};

use fanns_hwsim::accelerator::{Accelerator, AcceleratorError};
use fanns_hwsim::config::AcceleratorConfig;
use fanns_ivf::index::IvfPqIndex;
use fanns_ivf::params::IvfPqParams;
use fanns_perfmodel::qps::QpsPrediction;

/// A complete, self-describing accelerator build plan — the artifact the code
/// generator hands to the "compiler" (here: the simulator instantiation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorPlan {
    /// Human-readable name, e.g. `fanns_sift_r10_80`.
    pub name: String,
    /// The index the accelerator will serve (label only; the index itself is
    /// passed at instantiation time, like loading the database into HBM).
    pub index_label: String,
    /// The query-time algorithm parameters baked into the design.
    pub params: IvfPqParams,
    /// The hardware design point.
    pub design: AcceleratorConfig,
    /// The performance model's prediction for this combination, recorded so
    /// deployed accelerators can be validated against the model (§7.3.1's
    /// 86.9–99.4 % accuracy claim).
    pub predicted: Option<QpsPrediction>,
    /// Whether a network stack is attached (scale-out deployments).
    pub with_network_stack: bool,
}

impl AcceleratorPlan {
    /// Creates a plan.
    pub fn new(
        name: impl Into<String>,
        index_label: impl Into<String>,
        params: IvfPqParams,
        design: AcceleratorConfig,
        predicted: Option<QpsPrediction>,
    ) -> Self {
        Self {
            name: name.into(),
            index_label: index_label.into(),
            params,
            design,
            predicted,
            with_network_stack: false,
        }
    }

    /// Enables the hardware network stack (used by the scale-out experiments).
    pub fn with_network_stack(mut self, enabled: bool) -> Self {
        self.with_network_stack = enabled;
        self
    }

    /// Serialises the plan to JSON (the machine-readable half of the
    /// generated artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serialisation cannot fail")
    }

    /// Parses a plan back from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// "Compiles" a plan against an index: validates memory feasibility and
/// returns the runnable simulated accelerator (the stand-in for the
/// ten-hour bitstream compilation of Table 3).
pub fn instantiate<'a>(
    plan: &AcceleratorPlan,
    index: &'a IvfPqIndex,
) -> Result<Accelerator<'a>, AcceleratorError> {
    Accelerator::new(index, plan.design, plan.params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_ivf::index::IvfPqTrainConfig;

    fn plan_and_index() -> (AcceleratorPlan, IvfPqIndex) {
        let (db, _) = SyntheticSpec::sift_small(81).generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(16)
                .with_m(16)
                .with_ksub(64)
                .with_train_sample(1_000),
        );
        let params = IvfPqParams::new(16, 4, 10).with_m(16);
        let plan = AcceleratorPlan::new(
            "fanns_test",
            "IVF16",
            params,
            AcceleratorConfig::balanced(),
            None,
        );
        (plan, index)
    }

    #[test]
    fn plan_json_roundtrip() {
        let (plan, _) = plan_and_index();
        let json = plan.to_json();
        let back = AcceleratorPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        assert!(json.contains("fanns_test"));
    }

    #[test]
    fn instantiate_produces_a_working_accelerator() {
        let (plan, index) = plan_and_index();
        let acc = instantiate(&plan, &index).unwrap();
        assert_eq!(acc.params().k, 10);
        assert_eq!(
            acc.config().sizing.pq_dist_pes,
            plan.design.sizing.pq_dist_pes
        );
    }

    #[test]
    fn network_stack_flag_is_preserved() {
        let (plan, _) = plan_and_index();
        let plan = plan.with_network_stack(true);
        assert!(plan.with_network_stack);
        let back = AcceleratorPlan::from_json(&plan.to_json()).unwrap();
        assert!(back.with_network_stack);
    }
}
