//! Accelerator generation (steps 6–7 of the workflow).
//!
//! The original framework emits Vitis HLS C++ that is compiled to a
//! bitstream. In this reproduction the "generated accelerator" is (a) a
//! structural kernel plan — a textual, HLS-flavoured description of every PE,
//! FIFO and memory interface the chosen design instantiates — and (b) a
//! runnable [`fanns_hwsim::Accelerator`] bound to the index, which plays the
//! role of the deployed bitstream.

pub mod emit;
pub mod plan;

pub use emit::emit_kernel_plan;
pub use plan::{instantiate, AcceleratorPlan};
