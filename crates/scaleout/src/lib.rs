//! Scale-out substrate — the distributed half of the evaluation.
//!
//! The paper connects FPGAs directly to the network through a hardware
//! TCP/IP stack and compares an eight-accelerator FPGA cluster against eight
//! GPUs (Figure 1), then extrapolates to 16–1024 accelerators with a LogGP
//! network model (Figure 12, §7.3.2). This crate implements that methodology
//! end to end:
//!
//! * [`loggp`] — the LogGP cost model with the paper's constants
//!   (L = 6.0 µs, o = 4.7 µs, G = 0.73 ns/B, 1.0 µs per partial-result merge),
//! * [`collective`] — binary-tree broadcast/reduce built on LogGP,
//! * [`latency`] — latency-distribution utilities (median/P95/P99),
//! * [`cluster`] — the distributed-query simulation: sample per-node search
//!   latencies from measured single-node distributions, take the maximum
//!   over the partitions, and add the network cost.

pub mod cluster;
pub mod collective;
pub mod latency;
pub mod loggp;

pub use cluster::{simulate_cluster, ClusterSpec, DistributedLatencyReport};
pub use collective::{binary_tree_depth, broadcast_cost_us, reduce_cost_us};
pub use latency::LatencyDistribution;
pub use loggp::LogGpParams;
