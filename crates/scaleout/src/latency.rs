//! Latency-distribution utilities shared by the scale-out experiments.

use serde::{Deserialize, Serialize};

/// An empirical latency distribution (microseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyDistribution {
    samples_us: Vec<f64>,
}

impl LatencyDistribution {
    /// Wraps a set of latency samples (µs). At least one sample is required.
    pub fn new(mut samples_us: Vec<f64>) -> Self {
        assert!(!samples_us.is_empty(), "latency distribution needs samples");
        samples_us.sort_by(f64::total_cmp);
        Self { samples_us }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples_us
    }

    /// Linear-interpolation percentile (0–100).
    pub fn percentile(&self, p: f64) -> f64 {
        let s = &self.samples_us;
        let p = p.clamp(0.0, 100.0) / 100.0;
        let pos = p * (s.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            s[lo]
        } else {
            let frac = pos - lo as f64;
            s[lo] * (1.0 - frac) + s[hi] * frac
        }
    }

    /// Median latency.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
    }

    /// Sample by index modulo length (used by the deterministic resampling in
    /// the cluster simulation).
    pub fn sample_at(&self, idx: usize) -> f64 {
        self.samples_us[idx % self.samples_us.len()]
    }

    /// Tail-to-median ratio (P99 / median), the "latency stability" metric
    /// that differentiates FPGAs from GPUs in the paper.
    pub fn tail_ratio(&self) -> f64 {
        self.percentile(99.0) / self.median().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_ordered() {
        let d = LatencyDistribution::new((1..=100).map(|i| i as f64).collect());
        assert!(d.percentile(50.0) < d.percentile(95.0));
        assert!(d.percentile(95.0) < d.percentile(99.0));
        assert_eq!(d.percentile(0.0), 1.0);
        assert_eq!(d.percentile(100.0), 100.0);
    }

    #[test]
    fn median_and_mean_of_uniform_agree() {
        let d = LatencyDistribution::new((1..=101).map(|i| i as f64).collect());
        assert!((d.median() - 51.0).abs() < 1e-9);
        assert!((d.mean() - 51.0).abs() < 1e-9);
    }

    #[test]
    fn tail_ratio_detects_heavy_tails() {
        let stable = LatencyDistribution::new(vec![10.0; 99].into_iter().chain([11.0]).collect());
        let heavy = LatencyDistribution::new((0..99).map(|_| 10.0).chain([1000.0]).collect());
        assert!(heavy.tail_ratio() > stable.tail_ratio());
    }

    #[test]
    fn sample_at_wraps_around() {
        let d = LatencyDistribution::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(d.sample_at(0), 1.0);
        assert_eq!(d.sample_at(4), 2.0);
    }

    #[test]
    #[should_panic]
    fn empty_distribution_is_rejected() {
        let _ = LatencyDistribution::new(vec![]);
    }
}
