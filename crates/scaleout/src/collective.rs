//! Broadcast / reduce collectives over a binary tree (§7.3.2).
//!
//! The paper assumes the query broadcast and the partial-result reduction
//! follow a binary-tree topology, so their cost grows with `⌈log2 N⌉` levels;
//! each reduce level also pays the 1 µs partial-result merge.

use crate::loggp::LogGpParams;

/// Depth of a binary tree over `n` leaves (0 for a single node).
pub fn binary_tree_depth(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        (n - 1).ilog2() + 1
    }
}

/// Cost (µs) of broadcasting a `bytes`-byte query from the coordinator to
/// `n` accelerators down a binary tree.
pub fn broadcast_cost_us(params: &LogGpParams, n: usize, bytes: usize) -> f64 {
    binary_tree_depth(n) as f64 * params.point_to_point_us(bytes)
}

/// Cost (µs) of reducing `n` partial results (each `bytes` bytes) up a binary
/// tree, merging two partial result sets at every level.
pub fn reduce_cost_us(params: &LogGpParams, n: usize, bytes: usize) -> f64 {
    binary_tree_depth(n) as f64 * (params.point_to_point_us(bytes) + params.merge_us)
}

/// Total network cost (µs) of one distributed query: broadcast the query,
/// then reduce the K-result partial answers.
pub fn distributed_query_network_us(
    params: &LogGpParams,
    n: usize,
    query_bytes: usize,
    result_bytes: usize,
) -> f64 {
    broadcast_cost_us(params, n, query_bytes) + reduce_cost_us(params, n, result_bytes)
}

/// Network cost (µs) of routing one query to a single replica and returning
/// its K results: one point-to-point hop each way (no tree, no merge).
/// This is what a load balancer in front of a replica set pays, as opposed
/// to the scatter/gather fan-out of [`distributed_query_network_us`].
pub fn replica_route_network_us(
    params: &LogGpParams,
    query_bytes: usize,
    result_bytes: usize,
) -> f64 {
    params.point_to_point_us(query_bytes) + params.point_to_point_us(result_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loggp::{query_message_bytes, result_message_bytes};

    #[test]
    fn tree_depth_matches_log2() {
        assert_eq!(binary_tree_depth(1), 0);
        assert_eq!(binary_tree_depth(2), 1);
        assert_eq!(binary_tree_depth(8), 3);
        assert_eq!(binary_tree_depth(9), 4);
        assert_eq!(binary_tree_depth(1024), 10);
    }

    #[test]
    fn single_node_has_no_network_cost() {
        let p = LogGpParams::paper_infiniband();
        assert_eq!(broadcast_cost_us(&p, 1, 528), 0.0);
        assert_eq!(reduce_cost_us(&p, 1, 96), 0.0);
    }

    #[test]
    fn network_cost_grows_logarithmically() {
        let p = LogGpParams::paper_infiniband();
        let q = query_message_bytes(128);
        let r = result_message_bytes(10);
        let c8 = distributed_query_network_us(&p, 8, q, r);
        let c64 = distributed_query_network_us(&p, 64, q, r);
        let c1024 = distributed_query_network_us(&p, 1024, q, r);
        assert!(c64 > c8);
        assert!(c1024 > c64);
        // Doubling accelerators from 512 to 1024 adds exactly one tree level.
        let c512 = distributed_query_network_us(&p, 512, q, r);
        let level = p.point_to_point_us(q) + p.point_to_point_us(r) + p.merge_us;
        assert!((c1024 - c512 - level).abs() < 1e-9);
    }

    #[test]
    fn replica_route_is_two_point_to_point_hops() {
        let p = LogGpParams::paper_infiniband();
        let q = query_message_bytes(128);
        let r = result_message_bytes(10);
        let route = replica_route_network_us(&p, q, r);
        assert!((route - p.point_to_point_us(q) - p.point_to_point_us(r)).abs() < 1e-9);
        // Routing to one replica is cheaper than an 8-way scatter/gather.
        assert!(route < distributed_query_network_us(&p, 8, q, r));
    }

    #[test]
    fn reduce_includes_merge_cost() {
        let p = LogGpParams::paper_infiniband();
        let without_merge = binary_tree_depth(8) as f64 * p.point_to_point_us(96);
        assert!((reduce_cost_us(&p, 8, 96) - without_merge - 3.0).abs() < 1e-9);
    }
}
