//! Distributed-query latency simulation (Figures 1 and 12).
//!
//! The paper's methodology: record the single-node search-latency history of
//! each hardware type, then, for a distributed query over `N` accelerators,
//! draw `N` samples from that history, take the maximum (the query waits for
//! the slowest partition) and add the binary-tree broadcast/reduce network
//! cost from the LogGP model. Because the FPGA's latency distribution is
//! nearly flat while the GPU's has a heavy tail, the FPGA's advantage grows
//! with the accelerator count.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::collective::distributed_query_network_us;
use crate::latency::LatencyDistribution;
use crate::loggp::{query_message_bytes, result_message_bytes, LogGpParams};

/// Specification of a distributed search deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of accelerators, each holding one dataset partition.
    pub num_accelerators: usize,
    /// Query vector dimensionality (sizes the broadcast message).
    pub dim: usize,
    /// Results per query (sizes the reduce message).
    pub k: usize,
    /// Number of distributed queries to simulate.
    pub num_queries: usize,
    /// RNG seed for latency resampling.
    pub seed: u64,
}

impl ClusterSpec {
    /// The paper's eight-accelerator prototype setup (Figure 1): SIFT-style
    /// 128-d queries, K=10, 100K simulated queries.
    pub fn eight_accelerators() -> Self {
        Self {
            num_accelerators: 8,
            dim: 128,
            k: 10,
            num_queries: 10_000,
            seed: 0x5CA1E,
        }
    }
}

/// Latency report of a simulated distributed deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedLatencyReport {
    /// Number of accelerators.
    pub num_accelerators: usize,
    /// End-to-end per-query latencies (µs).
    pub distribution: LatencyDistribution,
    /// Median latency (µs).
    pub median_us: f64,
    /// 95th-percentile latency (µs).
    pub p95_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// Mean network component per query (µs).
    pub network_us: f64,
}

/// Simulates `spec.num_queries` distributed queries over a cluster whose
/// per-node search latencies follow `node_latency`.
pub fn simulate_cluster(
    spec: &ClusterSpec,
    node_latency: &LatencyDistribution,
    network: &LogGpParams,
) -> DistributedLatencyReport {
    assert!(spec.num_accelerators >= 1, "need at least one accelerator");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let network_us = distributed_query_network_us(
        network,
        spec.num_accelerators,
        query_message_bytes(spec.dim),
        result_message_bytes(spec.k),
    );

    let mut latencies = Vec::with_capacity(spec.num_queries);
    for _ in 0..spec.num_queries {
        // The distributed query completes when its slowest partition finishes.
        let mut slowest = 0.0f64;
        for _ in 0..spec.num_accelerators {
            let idx = rng.gen_range(0..node_latency.len());
            slowest = slowest.max(node_latency.sample_at(idx));
        }
        latencies.push(slowest + network_us);
    }

    let distribution = LatencyDistribution::new(latencies);
    DistributedLatencyReport {
        num_accelerators: spec.num_accelerators,
        median_us: distribution.median(),
        p95_us: distribution.percentile(95.0),
        p99_us: distribution.percentile(99.0),
        network_us,
        distribution,
    }
}

/// Convenience: sweeps the accelerator count (e.g. 16, 32, …, 1024 as in
/// Figure 12) and returns one report per point.
pub fn sweep_accelerator_counts(
    counts: &[usize],
    base_spec: &ClusterSpec,
    node_latency: &LatencyDistribution,
    network: &LogGpParams,
) -> Vec<DistributedLatencyReport> {
    counts
        .iter()
        .map(|&n| {
            let spec = ClusterSpec {
                num_accelerators: n,
                ..*base_spec
            };
            simulate_cluster(&spec, node_latency, network)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stable, FPGA-like latency distribution (~ flat around 500 µs).
    fn fpga_like() -> LatencyDistribution {
        LatencyDistribution::new((0..1000).map(|i| 480.0 + (i % 40) as f64).collect())
    }

    /// A heavy-tailed, GPU-like latency distribution (most queries fast, a
    /// few percent much slower with a wide spread — batching and
    /// kernel-launch jitter).
    fn gpu_like() -> LatencyDistribution {
        LatencyDistribution::new(
            (0..1000)
                .map(|i| {
                    if i % 50 == 0 {
                        2_000.0 + (i as f64) * 20.0
                    } else {
                        300.0 + (i % 30) as f64
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn single_node_report_matches_input_distribution_plus_no_network() {
        let spec = ClusterSpec {
            num_accelerators: 1,
            dim: 128,
            k: 10,
            num_queries: 2_000,
            seed: 1,
        };
        let report = simulate_cluster(&spec, &fpga_like(), &LogGpParams::paper_infiniband());
        assert_eq!(report.network_us, 0.0);
        assert!(report.median_us >= 480.0 && report.median_us <= 520.0);
    }

    #[test]
    fn more_accelerators_push_latency_toward_the_tail() {
        let base = ClusterSpec::eight_accelerators();
        let gpu = gpu_like();
        let net = LogGpParams::paper_infiniband();
        let reports = sweep_accelerator_counts(&[1, 8, 64], &base, &gpu, &net);
        assert!(reports[1].median_us > reports[0].median_us);
        assert!(reports[2].median_us > reports[1].median_us);
    }

    #[test]
    fn stable_distribution_scales_better_than_heavy_tailed() {
        // The paper's core scale-out claim: the FPGA:GPU advantage grows with
        // the number of accelerators because the GPU tail dominates the max.
        let base = ClusterSpec::eight_accelerators();
        let net = LogGpParams::paper_infiniband();
        let fpga = fpga_like();
        let gpu = gpu_like();
        let fpga_reports = sweep_accelerator_counts(&[8, 128], &base, &fpga, &net);
        let gpu_reports = sweep_accelerator_counts(&[8, 128], &base, &gpu, &net);
        let speedup_8 = gpu_reports[0].p95_us / fpga_reports[0].p95_us;
        let speedup_128 = gpu_reports[1].p95_us / fpga_reports[1].p95_us;
        assert!(
            speedup_128 > speedup_8,
            "speedup should grow with cluster size"
        );
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let spec = ClusterSpec::eight_accelerators();
        let net = LogGpParams::paper_infiniband();
        let a = simulate_cluster(&spec, &gpu_like(), &net);
        let b = simulate_cluster(&spec, &gpu_like(), &net);
        assert_eq!(a.median_us, b.median_us);
        assert_eq!(a.p99_us, b.p99_us);
    }

    #[test]
    fn network_cost_is_included_in_latency() {
        let spec = ClusterSpec {
            num_accelerators: 16,
            dim: 128,
            k: 10,
            num_queries: 100,
            seed: 3,
        };
        let report = simulate_cluster(&spec, &fpga_like(), &LogGpParams::paper_infiniband());
        assert!(report.network_us > 0.0);
        assert!(report.median_us > fpga_like().median());
    }
}
