//! The LogGP communication cost model.
//!
//! LogGP extends LogP with a per-byte gap `G` for long messages. The paper
//! instantiates it with parameters measured for InfiniBand/MPI: maximum
//! endpoint-to-endpoint latency `L` = 6.0 µs, per-message CPU overhead
//! `o` = 4.7 µs, and `G` = 0.73 ns per injected byte; merging two partial
//! result sets costs 1.0 µs. It also measures ~5 µs RTT for the FPGA's
//! hardware TCP/IP stack, which is what a direct-to-FPGA query pays.

use serde::{Deserialize, Serialize};

/// LogGP parameters in microseconds / bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogGpParams {
    /// Maximum communication latency between two endpoints (µs).
    pub latency_us: f64,
    /// Constant CPU overhead for sending or receiving one message (µs).
    pub overhead_us: f64,
    /// Cost per injected byte at the network interface (µs per byte).
    pub gap_per_byte_us: f64,
    /// Cost of merging two partial result sets at a tree node (µs).
    pub merge_us: f64,
}

impl LogGpParams {
    /// The constants used in §7.3.2 (InfiniBand measurements from the cited
    /// LogGP assessment papers).
    pub fn paper_infiniband() -> Self {
        Self {
            latency_us: 6.0,
            overhead_us: 4.7,
            gap_per_byte_us: 0.73e-3,
            merge_us: 1.0,
        }
    }

    /// Round-trip time of the FPGA's hardware TCP/IP stack (~5 µs), used for
    /// the single-accelerator online-query experiments.
    pub fn hardware_tcp_rtt_us() -> f64 {
        5.0
    }

    /// Cost of one point-to-point message of `bytes` bytes (µs):
    /// `o + L + (bytes − 1)·G + o` (send overhead, wire, per-byte gap,
    /// receive overhead).
    pub fn point_to_point_us(&self, bytes: usize) -> f64 {
        let gap = if bytes == 0 {
            0.0
        } else {
            (bytes as f64 - 1.0) * self.gap_per_byte_us
        };
        2.0 * self.overhead_us + self.latency_us + gap
    }
}

impl Default for LogGpParams {
    fn default() -> Self {
        Self::paper_infiniband()
    }
}

/// Size in bytes of a K-result message (id + distance per hit) plus header.
pub fn result_message_bytes(k: usize) -> usize {
    16 + k * 8
}

/// Size in bytes of a query message (a `dim`-dimensional f32 vector + header).
pub fn query_message_bytes(dim: usize) -> usize {
    16 + dim * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_loaded() {
        let p = LogGpParams::paper_infiniband();
        assert_eq!(p.latency_us, 6.0);
        assert_eq!(p.overhead_us, 4.7);
        assert!((p.gap_per_byte_us - 0.00073).abs() < 1e-9);
        assert_eq!(p.merge_us, 1.0);
    }

    #[test]
    fn point_to_point_cost_grows_with_message_size() {
        let p = LogGpParams::paper_infiniband();
        let small = p.point_to_point_us(64);
        let large = p.point_to_point_us(1_000_000);
        assert!(large > small);
        // Minimum cost is 2o + L = 15.4 us.
        assert!((p.point_to_point_us(1) - 15.4).abs() < 1e-9);
    }

    #[test]
    fn message_sizes_scale_with_k_and_dim() {
        assert!(result_message_bytes(100) > result_message_bytes(10));
        assert_eq!(query_message_bytes(128), 16 + 512);
    }
}
