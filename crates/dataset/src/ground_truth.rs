//! Exact brute-force nearest-neighbour ground truth.
//!
//! Recall (the paper's quality metric, §2) is always measured against the
//! exact top-K neighbours under L2 distance. This module computes that ground
//! truth with a parallel brute-force scan — the same methodology the public
//! SIFT/Deep benchmarks use to ship their `groundtruth.ivecs` files.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::types::{QuerySet, VectorDataset};

/// Exact nearest-neighbour answers for a query set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    k: usize,
    /// `neighbors[q]` lists the ids of the `k` nearest database vectors of
    /// query `q`, closest first.
    neighbors: Vec<Vec<usize>>,
    /// `distances[q][j]` is the squared L2 distance to `neighbors[q][j]`.
    distances: Vec<Vec<f32>>,
}

impl GroundTruth {
    /// Number of neighbours stored per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries covered.
    pub fn num_queries(&self) -> usize {
        self.neighbors.len()
    }

    /// The ids of the exact top-`k` neighbours of query `q`, closest first.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.neighbors[q]
    }

    /// Squared L2 distances matching [`GroundTruth::neighbors`].
    pub fn distances(&self, q: usize) -> &[f32] {
        &self.distances[q]
    }

    /// Truncates the ground truth to the top `k` neighbours (e.g. reuse a
    /// K=100 ground truth for an R@10 evaluation).
    pub fn truncated(&self, k: usize) -> GroundTruth {
        assert!(
            k <= self.k,
            "cannot extend ground truth from {} to {k}",
            self.k
        );
        GroundTruth {
            k,
            neighbors: self.neighbors.iter().map(|n| n[..k].to_vec()).collect(),
            distances: self.distances.iter().map(|d| d[..k].to_vec()).collect(),
        }
    }
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// A (distance, id) pair ordered so that a `BinaryHeap` keeps the *largest*
/// distance at the top, turning it into a fixed-size top-K structure.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f32,
    id: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact top-`k` neighbours of a single query under squared L2 distance.
///
/// Returns (ids, distances), closest first. Ties are broken by the smaller id
/// so results are fully deterministic.
pub fn exact_topk(database: &VectorDataset, query: &[f32], k: usize) -> (Vec<usize>, Vec<f32>) {
    assert_eq!(database.dim(), query.len(), "query dimensionality mismatch");
    let k = k.min(database.len());
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (id, v) in database.iter().enumerate() {
        let dist = l2_sq(query, v);
        if heap.len() < k {
            heap.push(HeapEntry { dist, id });
        } else if let Some(top) = heap.peek() {
            if dist < top.dist || (dist == top.dist && id < top.id) {
                heap.pop();
                heap.push(HeapEntry { dist, id });
            }
        }
    }
    let mut entries: Vec<HeapEntry> = heap.into_vec();
    entries.sort();
    (
        entries.iter().map(|e| e.id).collect(),
        entries.iter().map(|e| e.dist).collect(),
    )
}

/// Computes the exact ground truth for every query in parallel.
pub fn ground_truth(database: &VectorDataset, queries: &QuerySet, k: usize) -> GroundTruth {
    assert!(
        !database.is_empty(),
        "cannot build ground truth on an empty database"
    );
    let results: Vec<(Vec<usize>, Vec<f32>)> = (0..queries.len())
        .into_par_iter()
        .map(|q| exact_topk(database, queries.get(q), k))
        .collect();
    let (neighbors, distances) = results.into_iter().unzip();
    GroundTruth {
        k: k.min(database.len()),
        neighbors,
        distances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticSpec;

    fn line_dataset() -> VectorDataset {
        // Vectors at x = 0, 1, 2, ..., 9 on a 1-d line.
        VectorDataset::from_vectors(1, (0..10).map(|i| [i as f32]))
    }

    #[test]
    fn l2_sq_matches_hand_computation() {
        assert_eq!(l2_sq(&[1.0, 2.0], &[4.0, 6.0]), 9.0 + 16.0);
        assert_eq!(l2_sq(&[0.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn exact_topk_returns_sorted_nearest() {
        let db = line_dataset();
        let (ids, dists) = exact_topk(&db, &[3.2], 3);
        assert_eq!(ids, vec![3, 4, 2]);
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn exact_topk_clamps_k_to_database_size() {
        let db = line_dataset();
        let (ids, _) = exact_topk(&db, &[0.0], 100);
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn ground_truth_covers_all_queries() {
        let db = line_dataset();
        let queries = QuerySet::new(VectorDataset::from_vectors(1, [[0.1f32], [8.9]]));
        let gt = ground_truth(&db, &queries, 2);
        assert_eq!(gt.num_queries(), 2);
        assert_eq!(gt.neighbors(0), &[0, 1]);
        assert_eq!(gt.neighbors(1), &[9, 8]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let db = line_dataset();
        let queries = QuerySet::new(VectorDataset::from_vectors(1, [[5.1f32]]));
        let gt = ground_truth(&db, &queries, 4);
        let gt2 = gt.truncated(2);
        assert_eq!(gt2.k(), 2);
        assert_eq!(gt2.neighbors(0), &gt.neighbors(0)[..2]);
    }

    #[test]
    fn ground_truth_distances_are_nondecreasing() {
        let (db, queries) = SyntheticSpec::sift_small(19).generate();
        let gt = ground_truth(&db, &queries, 10);
        for q in 0..gt.num_queries() {
            let d = gt.distances(q);
            assert!(d.windows(2).all(|w| w[0] <= w[1]), "distances not sorted");
        }
    }

    #[test]
    fn nearest_neighbor_is_self_when_query_in_database() {
        let db = line_dataset();
        let queries = QuerySet::new(VectorDataset::from_vectors(1, [[4.0f32]]));
        let gt = ground_truth(&db, &queries, 1);
        assert_eq!(gt.neighbors(0), &[4]);
        assert_eq!(gt.distances(0), &[0.0]);
    }
}
