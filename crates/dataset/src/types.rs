//! Core dataset containers.
//!
//! Vectors are stored in a single flat `Vec<f32>` in row-major order so that
//! scanning a dataset is cache-friendly and trivially parallelisable with
//! rayon. Every accessor hands out `&[f32]` slices; nothing in the workspace
//! copies vectors unless it has to.

use serde::{Deserialize, Serialize};

/// A dense collection of `d`-dimensional `f32` vectors stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorDataset {
    dim: usize,
    data: Vec<f32>,
}

impl VectorDataset {
    /// Creates a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn new(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimensionality must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Creates an empty dataset with the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self::new(dim, Vec::new())
    }

    /// Creates a dataset with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "vector dimensionality must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a dataset from an iterator of vectors.
    ///
    /// # Panics
    /// Panics if any vector's length differs from `dim`.
    pub fn from_vectors<I, V>(dim: usize, vectors: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: AsRef<[f32]>,
    {
        let mut ds = Self::empty(dim);
        for v in vectors {
            ds.push(v.as_ref());
        }
        ds
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector length mismatch");
        self.data.extend_from_slice(v);
    }

    /// Appends all vectors of `other`.
    ///
    /// # Panics
    /// Panics if dimensionalities differ.
    pub fn extend_from(&mut self, other: &VectorDataset) {
        assert_eq!(self.dim, other.dim, "dimensionality mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow vector `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer (used by in-place transforms such as
    /// the OPQ rotation).
    pub fn as_flat_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Iterator over vector slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Returns a new dataset containing the vectors at `indices`.
    pub fn subset(&self, indices: &[usize]) -> VectorDataset {
        let mut out = VectorDataset::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Splits the dataset into `parts` contiguous shards whose sizes differ by
    /// at most one vector. Used by the scale-out experiments where each
    /// accelerator hosts one partition.
    pub fn shard(&self, parts: usize) -> Vec<VectorDataset> {
        assert!(parts > 0, "must request at least one shard");
        let n = self.len();
        let base = n / parts;
        let rem = n % parts;
        let mut shards = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let size = base + usize::from(p < rem);
            let mut shard = VectorDataset::with_capacity(self.dim, size);
            for i in start..start + size {
                shard.push(self.get(i));
            }
            start += size;
            shards.push(shard);
        }
        shards
    }

    /// Total memory footprint of the raw vectors in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// A single query vector together with its identifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Position of the query within its [`QuerySet`].
    pub id: usize,
    /// The query vector.
    pub vector: Vec<f32>,
}

/// A set of query vectors, stored exactly like a [`VectorDataset`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySet {
    vectors: VectorDataset,
}

impl QuerySet {
    /// Wraps a dataset as a query set.
    pub fn new(vectors: VectorDataset) -> Self {
        Self { vectors }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.vectors.dim()
    }

    /// Borrow query `i` as a slice.
    pub fn get(&self, i: usize) -> &[f32] {
        self.vectors.get(i)
    }

    /// Materialise query `i` as an owned [`Query`].
    pub fn query(&self, i: usize) -> Query {
        Query {
            id: i,
            vector: self.vectors.get(i).to_vec(),
        }
    }

    /// Iterator over query slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.vectors.iter()
    }

    /// The underlying dataset.
    pub fn as_dataset(&self) -> &VectorDataset {
        &self.vectors
    }
}

impl From<VectorDataset> for QuerySet {
    fn from(v: VectorDataset) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VectorDataset {
        VectorDataset::from_vectors(2, [[0.0f32, 1.0], [2.0, 3.0], [4.0, 5.0]])
    }

    #[test]
    fn new_rejects_misaligned_buffer() {
        let result = std::panic::catch_unwind(|| VectorDataset::new(3, vec![1.0; 4]));
        assert!(result.is_err());
    }

    #[test]
    fn push_and_get_roundtrip() {
        let ds = small();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.get(1), &[2.0, 3.0]);
    }

    #[test]
    fn iter_visits_all_rows() {
        let ds = small();
        let rows: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn subset_selects_rows_in_order() {
        let ds = small();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0), &[4.0, 5.0]);
        assert_eq!(sub.get(1), &[0.0, 1.0]);
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let ds = VectorDataset::from_vectors(1, (0..10).map(|i| [i as f32]));
        let shards = ds.shard(3);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(shards[0].get(0), &[0.0]);
        assert_eq!(shards[2].get(2), &[9.0]);
    }

    #[test]
    fn shard_preserves_all_vectors() {
        let ds = VectorDataset::from_vectors(1, (0..17).map(|i| [i as f32]));
        let shards = ds.shard(4);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn queryset_wraps_dataset() {
        let qs = QuerySet::new(small());
        assert_eq!(qs.len(), 3);
        assert_eq!(qs.query(2).vector, vec![4.0, 5.0]);
        assert_eq!(qs.query(2).id, 2);
    }

    #[test]
    fn nbytes_counts_f32s() {
        let ds = small();
        assert_eq!(ds.nbytes(), 3 * 2 * 4);
    }
}
