//! Dataset substrate for the FANNS reproduction.
//!
//! The paper evaluates on the SIFT100M (128-dimensional) and Deep100M
//! (96-dimensional) benchmarks. Those datasets are not available in this
//! environment, so this crate provides:
//!
//! * [`synth`] — seeded synthetic generators that reproduce the *structural*
//!   properties the co-design depends on (dimensionality, clustered geometry,
//!   skewed cluster populations),
//! * [`io`] — readers/writers for the standard `fvecs`/`ivecs`/`bvecs`
//!   formats so real benchmark files can be dropped in when available,
//! * [`ground_truth`](mod@ground_truth) — an exact, parallel brute-force
//!   k-NN used to produce recall ground truth,
//! * [`recall`] — the R@K metrics used throughout the paper's evaluation,
//! * [`sampling`] — train/query splitting helpers.
//!
//! All randomness is driven by explicit seeds so every experiment in the
//! repository is reproducible bit-for-bit.

pub mod ground_truth;
pub mod io;
pub mod recall;
pub mod sampling;
pub mod synth;
pub mod types;

pub use ground_truth::{ground_truth, GroundTruth};
pub use recall::{recall_at_k, recall_curve, RecallReport};
pub use synth::{DatasetKind, SyntheticSpec};
pub use types::{Query, QuerySet, VectorDataset};

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::ground_truth::{ground_truth, GroundTruth};
    pub use crate::recall::{recall_at_k, RecallReport};
    pub use crate::synth::{DatasetKind, SyntheticSpec};
    pub use crate::types::{QuerySet, VectorDataset};
}
