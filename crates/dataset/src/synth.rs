//! Synthetic dataset generation.
//!
//! The paper evaluates on SIFT100M (128-d local image descriptors) and
//! Deep100M (96-d CNN embeddings). The properties of those datasets that the
//! hardware–algorithm co-design actually depends on are:
//!
//! 1. dimensionality (drives Stage OPQ / IVFDist / BuildLUT workloads),
//! 2. clustered geometry (IVF partitioning only helps because the data is
//!    clusterable),
//! 3. skewed cluster populations (drives the expected number of PQ codes
//!    scanned per query, which the performance model estimates explicitly),
//! 4. query vectors drawn from the same distribution as the database.
//!
//! The generators below synthesise data with exactly those properties from a
//! seeded Gaussian-mixture model: `n_concepts` anchor points with Zipf-like
//! popularity, per-concept anisotropic noise, and values scaled to the
//! SIFT-like `[0, 218]` range or normalised to the unit sphere for the
//! Deep-like variant.

use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::types::{QuerySet, VectorDataset};

/// Which published benchmark the synthetic dataset imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// 128-dimensional SIFT-like descriptors (non-negative, roughly uint8-ranged).
    SiftLike,
    /// 96-dimensional Deep-like embeddings (L2-normalised).
    DeepLike,
    /// Fully custom dimensionality, unnormalised Gaussian mixture.
    Custom(usize),
}

impl DatasetKind {
    /// The dimensionality associated with the benchmark.
    pub fn dim(&self) -> usize {
        match self {
            DatasetKind::SiftLike => 128,
            DatasetKind::DeepLike => 96,
            DatasetKind::Custom(d) => *d,
        }
    }

    /// Human-readable dataset name used in reports.
    pub fn name(&self) -> String {
        match self {
            DatasetKind::SiftLike => "SIFT-like".to_string(),
            DatasetKind::DeepLike => "Deep-like".to_string(),
            DatasetKind::Custom(d) => format!("Custom{d}d"),
        }
    }
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Benchmark family to imitate.
    pub kind: DatasetKind,
    /// Number of database vectors.
    pub num_vectors: usize,
    /// Number of query vectors.
    pub num_queries: usize,
    /// Number of latent concepts (mixture components). More concepts means a
    /// more clusterable dataset; the paper's datasets are strongly clustered.
    pub n_concepts: usize,
    /// Zipf exponent controlling concept popularity skew (0 = uniform).
    pub skew: f64,
    /// Standard deviation of the per-concept noise relative to the anchor
    /// spread.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A small SIFT-like dataset suitable for unit tests (1 000 vectors).
    pub fn sift_small(seed: u64) -> Self {
        Self {
            kind: DatasetKind::SiftLike,
            num_vectors: 1_000,
            num_queries: 32,
            n_concepts: 32,
            skew: 0.8,
            noise: 0.25,
            seed,
        }
    }

    /// A medium SIFT-like dataset used by the examples and benches
    /// (100 000 vectors — the laptop-scale stand-in for SIFT100M).
    pub fn sift_medium(seed: u64) -> Self {
        Self {
            kind: DatasetKind::SiftLike,
            num_vectors: 100_000,
            num_queries: 256,
            n_concepts: 512,
            skew: 0.9,
            noise: 0.22,
            seed,
        }
    }

    /// A medium Deep-like dataset (100 000 vectors, 96-d, normalised).
    pub fn deep_medium(seed: u64) -> Self {
        Self {
            kind: DatasetKind::DeepLike,
            num_vectors: 100_000,
            num_queries: 256,
            n_concepts: 512,
            skew: 0.9,
            noise: 0.20,
            seed,
        }
    }

    /// Builder-style override of the database size.
    pub fn with_vectors(mut self, n: usize) -> Self {
        self.num_vectors = n;
        self
    }

    /// Builder-style override of the query count.
    pub fn with_queries(mut self, n: usize) -> Self {
        self.num_queries = n;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the database and query set described by this spec.
    pub fn generate(&self) -> (VectorDataset, QuerySet) {
        let dim = self.kind.dim();
        assert!(self.n_concepts > 0, "need at least one concept");
        assert!(self.num_vectors > 0, "need at least one database vector");

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let anchors = sample_anchors(&mut rng, self.n_concepts, dim);
        let scales = sample_scales(&mut rng, self.n_concepts, dim, self.noise);
        let popularity = zipf_weights(self.n_concepts, self.skew);

        let base = generate_points(
            self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            self.num_vectors,
            dim,
            &anchors,
            &scales,
            &popularity,
            self.kind,
        );
        let queries = generate_points(
            self.seed
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                .wrapping_add(1),
            self.num_queries,
            dim,
            &anchors,
            &scales,
            &popularity,
            self.kind,
        );
        (base, QuerySet::new(queries))
    }
}

/// Samples `k` anchor (concept-centre) vectors uniformly in the unit cube.
fn sample_anchors(rng: &mut ChaCha8Rng, k: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..k)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0f32..1.0)).collect())
        .collect()
}

/// Samples per-concept, per-dimension noise scales so the mixture components
/// are anisotropic (like real descriptor data).
fn sample_scales(rng: &mut ChaCha8Rng, k: usize, dim: usize, noise: f64) -> Vec<Vec<f32>> {
    (0..k)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    let jitter = rng.gen_range(0.5f32..1.5);
                    (noise as f32) * jitter
                })
                .collect()
        })
        .collect()
}

/// Zipf-like popularity weights (normalised to sum to one).
fn zipf_weights(k: usize, skew: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Draws a concept index from the popularity distribution.
fn sample_concept(rng: &mut impl Rng, cdf: &[f64]) -> usize {
    let u: f64 = rng.gen();
    match cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w;
            acc
        })
        .collect()
}

/// Generates `n` points from the mixture, in parallel, deterministically.
fn generate_points(
    seed: u64,
    n: usize,
    dim: usize,
    anchors: &[Vec<f32>],
    scales: &[Vec<f32>],
    popularity: &[f64],
    kind: DatasetKind,
) -> VectorDataset {
    let cdf = cumulative(popularity);
    let normal = rand::distributions::Uniform::new(-1.0f32, 1.0f32);

    // Generate in chunks so each rayon task owns an independent, seeded RNG.
    const CHUNK: usize = 4096;
    let chunks: Vec<(usize, usize)> = (0..n)
        .step_by(CHUNK)
        .map(|start| (start, (start + CHUNK).min(n)))
        .collect();

    let pieces: Vec<Vec<f32>> = chunks
        .par_iter()
        .map(|&(start, end)| {
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (start as u64).wrapping_mul(0xA24B_AED4_963E_E407),
            );
            let mut out = Vec::with_capacity((end - start) * dim);
            for _ in start..end {
                let c = sample_concept(&mut rng, &cdf);
                let anchor = &anchors[c];
                let scale = &scales[c];
                for d in 0..dim {
                    // Sum of three uniforms approximates a Gaussian well enough
                    // for clustering structure and is cheap and portable.
                    let g = (normal.sample(&mut rng)
                        + normal.sample(&mut rng)
                        + normal.sample(&mut rng))
                        / 1.732;
                    out.push(anchor[d] + scale[d] * g);
                }
            }
            out
        })
        .collect();

    let mut flat = Vec::with_capacity(n * dim);
    for p in pieces {
        flat.extend_from_slice(&p);
    }

    match kind {
        DatasetKind::SiftLike => {
            // SIFT descriptors are non-negative and roughly bounded by 218.
            for v in flat.iter_mut() {
                *v = (*v * 110.0 + 60.0).clamp(0.0, 218.0);
            }
        }
        DatasetKind::DeepLike => {
            // Deep descriptors are L2-normalised embeddings.
            for row in flat.chunks_exact_mut(dim) {
                let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > 1e-12 {
                    for x in row.iter_mut() {
                        *x /= norm;
                    }
                }
            }
        }
        DatasetKind::Custom(_) => {}
    }

    VectorDataset::new(dim, flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_small_has_requested_shape() {
        let (base, queries) = SyntheticSpec::sift_small(7).generate();
        assert_eq!(base.len(), 1_000);
        assert_eq!(base.dim(), 128);
        assert_eq!(queries.len(), 32);
        assert_eq!(queries.dim(), 128);
    }

    #[test]
    fn generation_is_deterministic_for_equal_seeds() {
        let (a, _) = SyntheticSpec::sift_small(42).generate();
        let (b, _) = SyntheticSpec::sift_small(42).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn generation_differs_across_seeds() {
        let (a, _) = SyntheticSpec::sift_small(1).generate();
        let (b, _) = SyntheticSpec::sift_small(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn sift_like_values_are_in_descriptor_range() {
        let (base, _) = SyntheticSpec::sift_small(3).generate();
        for v in base.as_flat() {
            assert!(*v >= 0.0 && *v <= 218.0, "value {v} outside SIFT range");
        }
    }

    #[test]
    fn deep_like_vectors_are_unit_norm() {
        let spec = SyntheticSpec {
            kind: DatasetKind::DeepLike,
            num_vectors: 200,
            num_queries: 8,
            n_concepts: 16,
            skew: 0.7,
            noise: 0.2,
            seed: 11,
        };
        let (base, _) = spec.generate();
        assert_eq!(base.dim(), 96);
        for row in base.iter() {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "norm {norm} not ~1");
        }
    }

    #[test]
    fn zipf_weights_sum_to_one_and_decrease() {
        let w = zipf_weights(10, 1.0);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn custom_kind_respects_dim() {
        let spec = SyntheticSpec {
            kind: DatasetKind::Custom(24),
            num_vectors: 100,
            num_queries: 4,
            n_concepts: 8,
            skew: 0.5,
            noise: 0.3,
            seed: 5,
        };
        let (base, queries) = spec.generate();
        assert_eq!(base.dim(), 24);
        assert_eq!(queries.dim(), 24);
    }

    #[test]
    fn skewed_popularity_produces_imbalanced_concepts() {
        // With strong skew the most popular concept should dominate; verify
        // indirectly by checking that the dataset variance is not uniform
        // across halves (a very weak but deterministic signal).
        let w = zipf_weights(100, 1.2);
        assert!(w[0] > 10.0 * w[99]);
    }
}
