//! Readers and writers for the `fvecs` / `ivecs` / `bvecs` vector formats.
//!
//! These are the formats the public SIFT/Deep ANN benchmarks are distributed
//! in: each vector is stored as a little-endian `i32` dimensionality followed
//! by `d` values (`f32` for fvecs, `i32` for ivecs, `u8` for bvecs). Support
//! for them means the synthetic datasets used in this reproduction can be
//! swapped for the real benchmark files without touching any other code.

use bytes::{Buf, BufMut, BytesMut};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::types::VectorDataset;

/// Errors produced by the vector-file readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file contents are not a valid vector file.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<IoError> for io::Error {
    /// Lets callers plumbing vector files through `io::Result` use `?` on
    /// the readers: format violations become `InvalidData`.
    fn from(e: IoError) -> Self {
        match e {
            IoError::Io(e) => e,
            IoError::Format(msg) => io::Error::new(io::ErrorKind::InvalidData, msg),
        }
    }
}

/// Payload size of a row with `d` elements of `elem_size` bytes, rejecting
/// headers whose declared size cannot even be computed. A hostile header can
/// claim up to `i32::MAX` elements; on 32-bit hosts `elem_size * d` then
/// wraps, the remaining-bytes guard passes, and the element reads panic past
/// the buffer — so the multiply must be checked, not silent.
fn payload_size(d: usize, elem_size: usize) -> Result<usize, IoError> {
    elem_size
        .checked_mul(d)
        .ok_or_else(|| IoError::Format(format!("row of {d} elements overflows a payload size")))
}

/// Parses an fvecs byte buffer into a dataset.
pub fn parse_fvecs(bytes: &[u8]) -> Result<VectorDataset, IoError> {
    let mut buf = bytes;
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    while buf.remaining() > 0 {
        if buf.remaining() < 4 {
            return Err(IoError::Format("truncated dimension header".into()));
        }
        let d = buf.get_i32_le();
        if d <= 0 {
            return Err(IoError::Format(format!("non-positive dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(prev) if prev != d => {
                return Err(IoError::Format(format!(
                    "inconsistent dimensions: {prev} then {d}"
                )))
            }
            _ => {}
        }
        if buf.remaining() < payload_size(d, 4)? {
            return Err(IoError::Format("truncated vector payload".into()));
        }
        for _ in 0..d {
            data.push(buf.get_f32_le());
        }
    }
    let dim = dim.ok_or_else(|| IoError::Format("empty fvecs buffer".into()))?;
    Ok(VectorDataset::new(dim, data))
}

/// Parses a bvecs byte buffer (u8 components) into a dataset of `f32`s.
pub fn parse_bvecs(bytes: &[u8]) -> Result<VectorDataset, IoError> {
    let mut buf = bytes;
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    while buf.remaining() > 0 {
        if buf.remaining() < 4 {
            return Err(IoError::Format("truncated dimension header".into()));
        }
        let d = buf.get_i32_le();
        if d <= 0 {
            return Err(IoError::Format(format!("non-positive dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(prev) if prev != d => {
                return Err(IoError::Format(format!(
                    "inconsistent dimensions: {prev} then {d}"
                )))
            }
            _ => {}
        }
        if buf.remaining() < d {
            return Err(IoError::Format("truncated vector payload".into()));
        }
        for _ in 0..d {
            data.push(buf.get_u8() as f32);
        }
    }
    let dim = dim.ok_or_else(|| IoError::Format("empty bvecs buffer".into()))?;
    Ok(VectorDataset::new(dim, data))
}

/// Parses an ivecs byte buffer into per-row `usize` id lists (the format used
/// for benchmark ground-truth files).
pub fn parse_ivecs(bytes: &[u8]) -> Result<Vec<Vec<usize>>, IoError> {
    let mut buf = bytes;
    let mut rows = Vec::new();
    while buf.remaining() > 0 {
        if buf.remaining() < 4 {
            return Err(IoError::Format("truncated dimension header".into()));
        }
        let d = buf.get_i32_le();
        if d < 0 {
            return Err(IoError::Format(format!("negative row length {d}")));
        }
        let d = d as usize;
        if buf.remaining() < payload_size(d, 4)? {
            return Err(IoError::Format("truncated row payload".into()));
        }
        let mut row = Vec::with_capacity(d);
        for _ in 0..d {
            let v = buf.get_i32_le();
            if v < 0 {
                return Err(IoError::Format(format!("negative id {v}")));
            }
            row.push(v as usize);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Serialises a dataset into fvecs bytes.
pub fn to_fvecs(dataset: &VectorDataset) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(dataset.len() * (4 + 4 * dataset.dim()));
    for row in dataset.iter() {
        out.put_i32_le(dataset.dim() as i32);
        for &v in row {
            out.put_f32_le(v);
        }
    }
    out.to_vec()
}

/// Serialises id rows into ivecs bytes.
pub fn to_ivecs(rows: &[Vec<usize>]) -> Vec<u8> {
    let mut out = BytesMut::new();
    for row in rows {
        out.put_i32_le(row.len() as i32);
        for &v in row {
            out.put_i32_le(v as i32);
        }
    }
    out.to_vec()
}

/// Reads an fvecs file from disk.
pub fn read_fvecs(path: &Path) -> Result<VectorDataset, IoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_fvecs(&bytes)
}

/// Reads a bvecs file from disk.
pub fn read_bvecs(path: &Path) -> Result<VectorDataset, IoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_bvecs(&bytes)
}

/// Reads an ivecs ground-truth file from disk.
pub fn read_ivecs(path: &Path) -> Result<Vec<Vec<usize>>, IoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_ivecs(&bytes)
}

/// Writes a dataset to an fvecs file.
pub fn write_fvecs(path: &Path, dataset: &VectorDataset) -> Result<(), IoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    writer.write_all(&to_fvecs(dataset))?;
    writer.flush()?;
    Ok(())
}

/// Writes id rows to an ivecs file.
pub fn write_ivecs(path: &Path, rows: &[Vec<usize>]) -> Result<(), IoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    writer.write_all(&to_ivecs(rows))?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let ds = VectorDataset::from_vectors(3, [[1.0f32, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let bytes = to_fvecs(&ds);
        let back = parse_fvecs(&bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn ivecs_roundtrip() {
        let rows = vec![vec![1usize, 2, 3], vec![7, 8]];
        let bytes = to_ivecs(&rows);
        let back = parse_ivecs(&bytes).unwrap();
        assert_eq!(rows, back);
    }

    #[test]
    fn bvecs_parses_byte_components() {
        // One 4-d vector with components 10, 20, 30, 40.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4i32.to_le_bytes());
        bytes.extend_from_slice(&[10u8, 20, 30, 40]);
        let ds = parse_bvecs(&bytes).unwrap();
        assert_eq!(ds.dim(), 4);
        assert_eq!(ds.get(0), &[10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn truncated_fvecs_is_rejected() {
        let ds = VectorDataset::from_vectors(3, [[1.0f32, 2.0, 3.0]]);
        let mut bytes = to_fvecs(&ds);
        bytes.truncate(bytes.len() - 2);
        assert!(parse_fvecs(&bytes).is_err());
    }

    #[test]
    fn inconsistent_dimensions_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2i32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        bytes.extend_from_slice(&3i32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        bytes.extend_from_slice(&3.0f32.to_le_bytes());
        assert!(parse_fvecs(&bytes).is_err());
    }

    #[test]
    fn empty_buffer_is_rejected() {
        assert!(parse_fvecs(&[]).is_err());
        assert!(parse_bvecs(&[]).is_err());
    }

    #[test]
    fn every_truncation_point_is_rejected_not_panicked() {
        // The formats are self-delimiting per row, so a cut exactly on a row
        // boundary parses as a shorter file; every *other* prefix length must
        // fail with a typed error (and, above all, never panic).
        let ds = VectorDataset::from_vectors(3, [[1.0f32, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let fbytes = to_fvecs(&ds);
        let ibytes = to_ivecs(&[vec![1usize, 2, 3], vec![4, 5, 6]]);
        let record = 4 + 4 * 3;
        for len in 1..fbytes.len() {
            let parsed = parse_fvecs(&fbytes[..len]);
            if len % record == 0 {
                assert_eq!(parsed.unwrap().len(), len / record, "boundary cut at {len}");
            } else {
                assert!(parsed.is_err(), "fvecs prefix of {len} bytes parsed");
            }
        }
        for len in 1..ibytes.len() {
            let parsed = parse_ivecs(&ibytes[..len]);
            if len % record == 0 {
                assert_eq!(parsed.unwrap().len(), len / record, "boundary cut at {len}");
            } else {
                assert!(parsed.is_err(), "ivecs prefix of {len} bytes parsed");
            }
        }
    }

    #[test]
    fn hostile_dimension_headers_are_format_errors() {
        // A header may claim up to i32::MAX elements while carrying almost no
        // payload. The declared-size arithmetic must not wrap (it does on
        // 32-bit hosts without the checked multiply) and the reader must
        // return a typed error rather than read past the buffer.
        for d in [i32::MAX, i32::MAX / 4 + 1, 1 << 30] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&d.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 16]);
            assert!(
                matches!(parse_fvecs(&bytes), Err(IoError::Format(_))),
                "d={d}"
            );
            assert!(
                matches!(parse_bvecs(&bytes), Err(IoError::Format(_))),
                "d={d}"
            );
            assert!(
                matches!(parse_ivecs(&bytes), Err(IoError::Format(_))),
                "d={d}"
            );
        }
    }

    #[test]
    fn payload_size_checks_the_multiply() {
        assert_eq!(payload_size(3, 4).unwrap(), 12);
        assert!(payload_size(usize::MAX / 2, 4).is_err());
    }

    #[test]
    fn io_error_conversion_preserves_the_failure() {
        let err: io::Error = IoError::Format("bad file".into()).into();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad file"));
        let inner = io::Error::new(io::ErrorKind::NotFound, "missing");
        let err: io::Error = IoError::Io(inner).into();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fanns_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.fvecs");
        let ds = VectorDataset::from_vectors(2, [[1.5f32, -2.5], [0.0, 9.0]]);
        write_fvecs(&path, &ds).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }
}
