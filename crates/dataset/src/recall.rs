//! Recall metrics (R@K), the quality measure used throughout the paper.
//!
//! Following the paper (and Faiss), `R@K` is the fraction of queries whose
//! *true nearest neighbour* appears somewhere in the K results returned —
//! this is the "recall at K" the recall goals R@1=30%, R@10=80%, R@100=95%
//! refer to. We additionally report *intersection recall* (how much of the
//! exact top-K set is recovered), which some ANN papers call recall as well;
//! the two agree for K=1.

use serde::{Deserialize, Serialize};

use crate::ground_truth::GroundTruth;

/// Recall figures aggregated over a query set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecallReport {
    /// The K used when producing the approximate results.
    pub k: usize,
    /// Fraction of queries whose true nearest neighbour is in the top-K
    /// returned results (the paper's R@K).
    pub recall_at_k: f64,
    /// Average fraction of the exact top-K set recovered.
    pub intersection_recall: f64,
    /// Number of queries evaluated.
    pub num_queries: usize,
}

impl RecallReport {
    /// Whether the report satisfies a recall goal such as `0.8` for R@10=80%.
    pub fn meets(&self, goal: f64) -> bool {
        self.recall_at_k + 1e-12 >= goal
    }
}

/// Computes recall of approximate `results` against the exact `ground_truth`.
///
/// `results[q]` holds the ids returned for query `q`, best first; lists may be
/// shorter than K (e.g. when nprobe is tiny and fewer than K candidates were
/// scanned).
pub fn recall_at_k(results: &[Vec<usize>], ground_truth: &GroundTruth, k: usize) -> RecallReport {
    assert_eq!(
        results.len(),
        ground_truth.num_queries(),
        "result count does not match ground truth"
    );
    assert!(
        k <= ground_truth.k(),
        "ground truth only covers K={} but K={k} was requested",
        ground_truth.k()
    );
    let mut nn_hits = 0usize;
    let mut inter_sum = 0.0f64;
    for (q, res) in results.iter().enumerate() {
        let truth = &ground_truth.neighbors(q)[..k];
        let returned = &res[..res.len().min(k)];
        let true_nn = truth[0];
        if returned.contains(&true_nn) {
            nn_hits += 1;
        }
        let mut hits = 0usize;
        for t in truth {
            if returned.contains(t) {
                hits += 1;
            }
        }
        inter_sum += hits as f64 / k as f64;
    }
    let n = results.len();
    RecallReport {
        k,
        recall_at_k: nn_hits as f64 / n as f64,
        intersection_recall: inter_sum / n as f64,
        num_queries: n,
    }
}

/// One point on a recall-versus-parameter curve (e.g. recall vs nprobe).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecallPoint {
    /// The swept parameter value (typically nprobe).
    pub parameter: usize,
    /// Measured recall at that parameter value.
    pub recall: f64,
}

/// Builds a recall curve from per-parameter result sets.
///
/// `runs` maps a parameter value to the approximate results obtained with it.
pub fn recall_curve(
    runs: &[(usize, Vec<Vec<usize>>)],
    ground_truth: &GroundTruth,
    k: usize,
) -> Vec<RecallPoint> {
    runs.iter()
        .map(|(param, results)| RecallPoint {
            parameter: *param,
            recall: recall_at_k(results, ground_truth, k).recall_at_k,
        })
        .collect()
}

/// Finds the smallest parameter value on a (monotonically improving) recall
/// curve that meets `goal`, or `None` if the goal is unreachable.
///
/// This is step 3 of the FANNS workflow: "evaluate the minimum nprobe that can
/// achieve the user-specified recall goal on each index".
pub fn min_parameter_for_goal(curve: &[RecallPoint], goal: f64) -> Option<usize> {
    curve
        .iter()
        .filter(|p| p.recall + 1e-12 >= goal)
        .map(|p| p.parameter)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::ground_truth;
    use crate::types::{QuerySet, VectorDataset};

    fn setup() -> GroundTruth {
        let db = VectorDataset::from_vectors(1, (0..10).map(|i| [i as f32]));
        let queries = QuerySet::new(VectorDataset::from_vectors(1, [[0.1f32], [5.1]]));
        ground_truth(&db, &queries, 3)
    }

    #[test]
    fn perfect_results_give_full_recall() {
        let gt = setup();
        let results = vec![gt.neighbors(0).to_vec(), gt.neighbors(1).to_vec()];
        let report = recall_at_k(&results, &gt, 3);
        assert_eq!(report.recall_at_k, 1.0);
        assert_eq!(report.intersection_recall, 1.0);
        assert!(report.meets(0.95));
    }

    #[test]
    fn missing_nearest_neighbor_reduces_recall() {
        let gt = setup();
        // First query misses its true NN (0), second query hits.
        let results = vec![vec![1, 2, 3], gt.neighbors(1).to_vec()];
        let report = recall_at_k(&results, &gt, 3);
        assert!((report.recall_at_k - 0.5).abs() < 1e-12);
        assert!(report.intersection_recall < 1.0);
        assert!(!report.meets(0.8));
    }

    #[test]
    fn short_result_lists_are_tolerated() {
        let gt = setup();
        let results = vec![vec![0], vec![5]];
        let report = recall_at_k(&results, &gt, 3);
        assert_eq!(report.recall_at_k, 1.0);
        assert!((report.intersection_recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_curve_and_min_parameter() {
        let gt = setup();
        let poor = vec![vec![9], vec![9]];
        let good = vec![gt.neighbors(0).to_vec(), gt.neighbors(1).to_vec()];
        let curve = recall_curve(&[(1, poor), (8, good)], &gt, 1);
        assert_eq!(curve.len(), 2);
        assert_eq!(min_parameter_for_goal(&curve, 0.9), Some(8));
        assert_eq!(min_parameter_for_goal(&curve, 1.1), None);
    }

    #[test]
    #[should_panic]
    fn recall_requires_matching_query_count() {
        let gt = setup();
        let results = vec![vec![0]];
        let _ = recall_at_k(&results, &gt, 1);
    }
}
