//! Deterministic sampling helpers.
//!
//! Index training (k-means for the coarse quantizer and for the PQ
//! sub-quantizers) never needs the full database; the paper's workflow trains
//! on a sample and the user supplies a separate "sample query set" for the
//! recall/nprobe exploration. These helpers produce those samples with
//! explicit seeds.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::types::{QuerySet, VectorDataset};

/// Draws `n` vectors uniformly at random (without replacement) for training.
///
/// If `n >= dataset.len()` the whole dataset is returned (in original order).
pub fn sample_training_set(dataset: &VectorDataset, n: usize, seed: u64) -> VectorDataset {
    if n >= dataset.len() {
        return dataset.clone();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n);
    indices.sort_unstable();
    dataset.subset(&indices)
}

/// Splits a query set into a held-out exploration set (used to calibrate the
/// recall–nprobe relationship) and a test set (used to report final numbers).
pub fn split_queries(queries: &QuerySet, explore_fraction: f64, seed: u64) -> (QuerySet, QuerySet) {
    assert!(
        (0.0..=1.0).contains(&explore_fraction),
        "explore_fraction must be in [0, 1]"
    );
    let n = queries.len();
    let n_explore = ((n as f64) * explore_fraction).round() as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let (explore_idx, test_idx) = indices.split_at(n_explore.min(n));
    let mut explore_idx = explore_idx.to_vec();
    let mut test_idx = test_idx.to_vec();
    explore_idx.sort_unstable();
    test_idx.sort_unstable();
    (
        QuerySet::new(queries.as_dataset().subset(&explore_idx)),
        QuerySet::new(queries.as_dataset().subset(&test_idx)),
    )
}

/// Deterministically selects `n` evenly spaced vector ids, useful for building
/// small smoke-test workloads out of a larger dataset.
pub fn strided_indices(total: usize, n: usize) -> Vec<usize> {
    if n == 0 || total == 0 {
        return Vec::new();
    }
    if n >= total {
        return (0..total).collect();
    }
    (0..n).map(|i| i * total / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticSpec;

    #[test]
    fn training_sample_has_requested_size() {
        let (db, _) = SyntheticSpec::sift_small(1).generate();
        let sample = sample_training_set(&db, 100, 99);
        assert_eq!(sample.len(), 100);
        assert_eq!(sample.dim(), db.dim());
    }

    #[test]
    fn training_sample_is_deterministic() {
        let (db, _) = SyntheticSpec::sift_small(1).generate();
        let a = sample_training_set(&db, 50, 7);
        let b = sample_training_set(&db, 50, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_sample_returns_whole_dataset() {
        let (db, _) = SyntheticSpec::sift_small(1).generate();
        let sample = sample_training_set(&db, 10_000, 7);
        assert_eq!(sample.len(), db.len());
    }

    #[test]
    fn query_split_partitions_the_set() {
        let (_, queries) = SyntheticSpec::sift_small(2).generate();
        let (explore, test) = split_queries(&queries, 0.25, 3);
        assert_eq!(explore.len() + test.len(), queries.len());
        assert_eq!(explore.len(), 8);
    }

    #[test]
    fn strided_indices_cover_range() {
        let idx = strided_indices(100, 10);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[0], 0);
        assert!(idx.iter().all(|&i| i < 100));
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn strided_indices_degenerate_cases() {
        assert!(strided_indices(0, 5).is_empty());
        assert!(strided_indices(5, 0).is_empty());
        assert_eq!(strided_indices(3, 10), vec![0, 1, 2]);
    }
}
