//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of rayon's parallel-iterator API this workspace
//! uses (`into_par_iter`, `par_iter`, `map`, `flat_map_iter`, `filter`,
//! `filter_map`, `collect`, `sum`, `max_by`, `min_by`, `for_each`) with
//! *eager* combinators: each adapter materialises its output in parallel
//! using `std::thread::scope`, splitting the input into one contiguous chunk
//! per available core and preserving input order. For the pure, finite
//! pipelines in this workspace eager evaluation is semantically identical to
//! rayon's lazy fusion; each adapter costs one pass instead of being fused,
//! which is an acceptable trade for a dependency-free shim.
//!
//! Small inputs (fewer than two items per worker) run inline to avoid thread
//! spawn overhead dominating tiny workloads.

/// The parallel-iterator prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Number of worker threads used for parallel execution.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An eagerly evaluated parallel iterator holding its items in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`] by value (ranges, `Vec`s, ...).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
{
    type Item = C::Item;

    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a [`ParIter`] over references (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed element type.
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Runs `f` over `items` in parallel, returning outputs in input order.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let workers = current_num_threads();
    if workers <= 1 || items.len() < workers * 2 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(workers);
    let mut inputs: Vec<Vec<T>> = Vec::new();
    {
        let mut it = items.into_iter();
        loop {
            let part: Vec<T> = it.by_ref().take(chunk).collect();
            if part.is_empty() {
                break;
            }
            inputs.push(part);
        }
    }
    let f = &f;
    let outputs: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .map(|part| scope.spawn(move || part.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

impl<T: Send> ParIter<T> {
    /// Parallel `map`, evaluated eagerly, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Parallel `flat_map` over a serial inner iterator (rayon's
    /// `flat_map_iter`), preserving order.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<U::Item>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        let nested = parallel_map(self.items, |item| f(item).into_iter().collect::<Vec<_>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Parallel `filter`, preserving order.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let kept = parallel_map(self.items, |item| if f(&item) { Some(item) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Parallel `filter_map`, preserving order.
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        let kept = parallel_map(self.items, f);
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<B: FromIterator<T>>(self) -> B {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Maximum item under a comparator (last maximum wins, like rayon).
    pub fn max_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, compare: F) -> Option<T> {
        self.items.into_iter().max_by(|a, b| compare(a, b))
    }

    /// Minimum item under a comparator.
    pub fn min_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, compare: F) -> Option<T> {
        self.items.into_iter().min_by(|a, b| compare(a, b))
    }

    /// Parallel `for_each` (effects only; completion ordering unspecified).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _ = parallel_map(self.items, |item| {
            f(item);
        });
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let total: f64 = data.par_iter().map(|&x| x * 10.0).sum();
        assert_eq!(total, 60.0);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<usize> = vec![0usize, 3, 6]
            .into_par_iter()
            .flat_map_iter(|start| start..start + 3)
            .collect();
        assert_eq!(out, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn max_by_matches_serial() {
        let data = vec![3.0f64, 9.5, -1.0, 9.5, 2.0];
        let best = data
            .par_iter()
            .map(|&x| x)
            .max_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(best, Some(9.5));
    }

    #[test]
    fn filter_map_drops_none() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 7 == 0).then_some(i))
            .collect();
        assert_eq!(out, (0..100).filter(|i| i % 7 == 0).collect::<Vec<_>>());
    }
}
