//! Derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by parsing
//! the item's token stream directly (the build environment has no `syn` /
//! `quote`), then emitting impls against the shim's `Value` model:
//!
//! * structs with named fields → `Value::Map` keyed by field name,
//! * newtype structs → transparent (the inner value),
//! * tuple structs → `Value::Seq`,
//! * unit structs → `Value::Null`,
//! * enums → externally tagged, matching serde's default: unit variants as
//!   `Value::Str(name)`, data variants as a single-entry map
//!   `{name: payload}`.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported —
//! the workspace does not use them — and hit a compile error with a clear
//! message rather than silently mis-serialising.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- item model ------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde shim derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}` (only struct/enum)"),
    };

    Item { name, shape }
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute body group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, tracking angle-bracket depth so
/// commas inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        fields.push(field);
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx + 1 == tokens.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip to the next top-level comma (covers explicit discriminants).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---- code generation -------------------------------------------------------

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(enum_name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{enum_name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
        ),
        Fields::Tuple(1) => format!(
            "{enum_name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(\
             ::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let vals: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                vals.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vn}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__value.field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({inits})),\n\
                 __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                 \"expected sequence of length {n} for {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => render_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn render_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"),
                Fields::Tuple(1) => format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__inner)?)),"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "\"{vn}\" => match __inner {{\n\
                         ::serde::Value::Seq(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}::{vn}({inits})),\n\
                         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                         \"expected sequence of length {n} for {name}::{vn}, found {{}}\", \
                         __other.kind()))),\n\
                         }},",
                        inits = inits.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__inner.field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                        inits.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "match __value {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit}\n\
         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"unknown unit variant `{{}}` for {name}\", __other))),\n\
         }},\n\
         ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __inner) = &__entries[0];\n\
         match __tag.as_str() {{\n\
         {tagged}\n\
         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"unknown variant `{{}}` for {name}\", __other))),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"expected externally tagged enum {name}, found {{}}\", __other.kind()))),\n\
         }}",
        unit = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
    )
}
