//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides the trait layer this workspace uses — [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait with `gen` / `gen_range`,
//! `distributions::{Distribution, Uniform}` and `seq::SliceRandom` — over any
//! RNG core (the `rand_chacha` shim supplies ChaCha8). Generated streams are
//! deterministic per seed but are **not** bit-compatible with the real crates;
//! nothing in this workspace depends on the exact stream, only on seeded
//! determinism.

/// A low-level random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills a byte buffer with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (raw key bytes).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a 64-bit seed, expanding it through SplitMix64
    /// (the same construction the real `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high - low) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight modulo
                // bias of plain `% span` is avoided via 128-bit widening.
                let x = rng.next_u64();
                let product = (x as u128) * (span as u128);
                low + ((product >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let x = rng.next_u64();
                let product = (x as u128) * (span as u128);
                let offset = (product >> 64) as u64;
                ((low as i64).wrapping_add(offset as i64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        low + unit * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait SampleStandard {
    /// Draws a standard sample (`[0, 1)` for floats, full range for ints).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    /// Draws a standard sample (type-directed, like `rand::Rng::gen`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Distribution types (`rand::distributions`).
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Creates a uniform distribution over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Self { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.low, self.high)
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_range(rng, 0usize, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::SampleUniform::sample_range(rng, 0usize, self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::seq::SliceRandom;
    use super::*;

    /// A trivial deterministic core for testing the trait layer.
    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = rng.gen_range(0.0f64..0.001);
            assert!((0.0..0.001).contains(&d));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = Counter(3);
        let dist = Uniform::new(-2.0f32, 2.0);
        for _ in 0..1_000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut data: Vec<usize> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(data, sorted, "shuffle should change the order");
    }
}
