//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 block function (D. J. Bernstein's ChaCha with
//! 8 double-rounds) behind the `rand` shim's [`RngCore`] / [`SeedableRng`]
//! traits. Output is deterministic per seed — everything the workspace's
//! seeded experiments require — though the stream is not bit-identical to the
//! real `rand_chacha` crate (which seeds and counts blocks slightly
//! differently).

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher RNG with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (low, high) plus 64-bit stream id.
    counter: u64,
    stream: u64,
    /// Buffered keystream block and read cursor.
    buffer: [u32; BLOCK_WORDS],
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects a keystream stream id (part of the nonce), resetting position.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.cursor = BLOCK_WORDS;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [0; BLOCK_WORDS];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..4 {
            // Four iterations of (column round + diagonal round) = 8 rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..BLOCK_WORDS {
            self.buffer[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

/// Alias used by code written against the 20-round variant; the shim backs it
/// with the same 8-round core (sufficient for simulation workloads).
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "seeds 1 and 2 produced {same}/64 equal words");
    }

    #[test]
    fn keystream_looks_balanced() {
        // Crude sanity check: bit population over 64K words near 50%.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..65_536).map(|_| rng.next_u32().count_ones()).sum();
        let total = 65_536u64 * 32;
        let frac = f64::from(ones) / total as f64;
        assert!((0.49..0.51).contains(&frac), "bit fraction {frac}");
    }

    #[test]
    fn trait_layer_composes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = rng.gen_range(0usize..10);
        assert!(v < 10);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }
}
