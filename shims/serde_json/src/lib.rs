//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` shim's `Value` model to JSON text and parses
//! JSON text back. Numbers print through Rust's shortest-roundtrip float
//! formatting, so `f64` (and widened `f32`) values survive a
//! serialise → parse cycle bit-exactly — the property the accelerator-plan
//! round-trip tests rely on.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serialisable type into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a deserialisable type from a [`Value`].
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serialises to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a deserialisable type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses a JSON document into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    Ok(value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_composite(
            out,
            indent,
            depth,
            items.is_empty(),
            '[',
            ']',
            |out, depth| {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        push_separator(out, indent, depth);
                    }
                    write_value(out, item, indent, depth);
                }
            },
        ),
        Value::Map(entries) => write_composite(
            out,
            indent,
            depth,
            entries.is_empty(),
            '{',
            '}',
            |out, depth| {
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        push_separator(out, indent, depth);
                    }
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, depth);
                }
            },
        ),
    }
}

fn write_composite(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String, usize),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    if let Some(width) = indent {
        out.push('\n');
        push_indent(out, width, depth + 1);
    }
    body(out, depth + 1);
    if let Some(width) = indent {
        out.push('\n');
        push_indent(out, width, depth);
    }
    out.push(close);
}

fn push_separator(out: &mut String, indent: Option<usize>, depth: usize) {
    out.push(',');
    if let Some(width) = indent {
        out.push('\n');
        push_indent(out, width, depth);
    }
}

fn push_indent(out: &mut String, width: usize, depth: usize) {
    for _ in 0..width * depth {
        out.push(' ');
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        let text = v.to_string();
        out.push_str(&text);
        // Keep floats recognisable as floats (serde_json prints `1.0`).
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no non-finite literals; serde_json renders them as null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.bump() {
            Some(found) if found == b => Ok(()),
            Some(found) => Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                found as char
            ))),
            None => Err(Error::new(format!(
                "expected `{}`, found end of input",
                b as char
            ))),
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {} (expected `{keyword}`)",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                    }
                    other => return Err(Error::new(format!("invalid escape sequence {other:?}"))),
                },
                Some(byte) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(byte);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated unicode escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in unicode escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(7)),
            ("b".to_string(), Value::Float(1.5)),
            ("c".to_string(), Value::Str("x\n\"y".to_string())),
            ("d".to_string(), Value::Bool(false)),
            ("e".to_string(), Value::Null),
            ("f".to_string(), Value::Int(-3)),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            out
        };
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789, -0.25] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
        for x in [0.1f32, 7.25, -1.0e-6] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = Value::Map(vec![(
            "list".to_string(),
            Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert!(out.contains("\n  \"list\": [\n"));
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn integers_keep_their_sign_class() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("42.0").unwrap(), Value::Float(42.0));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::Str("é😀".to_string())
        );
    }
}
