//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with `pattern in strategy` bindings, range strategies
//! over integers and floats, `prop::collection::vec`, and the
//! `prop_assert*` macros. Instead of shrinking counterexamples, each property
//! runs a fixed number of deterministically seeded cases (including the
//! range minima), which keeps failures reproducible without a dependency.

/// Number of cases each property runs.
pub const CASES: usize = 192;

/// A deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named property (seeded from the name).
    pub fn for_property(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        Self { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value. `case` is the case index, so strategies can pin the
    /// earliest cases to boundary values.
    fn generate(&self, rng: &mut TestRng, case: usize) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng, case: usize) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                if case == 0 {
                    return self.start;
                }
                if case == 1 {
                    return self.end - 1;
                }
                let span = (self.end - self.start) as u128;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                self.start + offset as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng, case: usize) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                if case == 0 {
                    return self.start;
                }
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng, case: usize) -> Vec<S::Value> {
            let len = self.size.generate(rng, case);
            // Element draws use a case index past the boundary-pinning range
            // so vectors are filled with varied values.
            (0..len)
                .map(|_| self.element.generate(rng, 2 + case))
                .collect()
        }
    }
}

/// The proptest prelude: macros, the [`Strategy`] trait and the `prop` path.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Runs a property over [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::for_property(stringify!($name));
            for __case in 0..$crate::CASES {
                $(
                    let $arg = $crate::Strategy::generate(&$strategy, &mut __rng, __case);
                )+
                $body
            }
        }
    )*};
}

/// `assert!` under a property (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_hit_requested_lengths(values in prop::collection::vec(0.0f32..5.0, 0..7)) {
            prop_assert!(values.len() < 7);
            prop_assert!(values.iter().all(|v| (0.0..5.0).contains(v)));
        }
    }

    #[test]
    fn boundary_cases_are_pinned() {
        let mut rng = TestRng::for_property("boundary");
        assert_eq!((2usize..9).generate(&mut rng, 0), 2);
        assert_eq!((2usize..9).generate(&mut rng, 1), 8);
    }
}
