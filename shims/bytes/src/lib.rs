//! Offline stand-in for the `bytes` crate.
//!
//! Implements the cursor-style [`Buf`] reads this workspace's vector-file
//! parsers use (`&[u8]` advances as values are consumed), the [`BufMut`]
//! little-endian writers, and a minimal growable [`BytesMut`].

/// Sequential little-endian reads over a shrinking byte slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_i32_le(&mut self) -> i32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        i32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Sequential little-endian writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut out = BytesMut::with_capacity(16);
        out.put_i32_le(-7);
        out.put_f32_le(2.5);
        out.put_u8(9);
        let bytes = out.to_vec();
        let mut buf: &[u8] = &bytes;
        assert_eq!(buf.remaining(), 9);
        assert_eq!(buf.get_i32_le(), -7);
        assert_eq!(buf.get_f32_le(), 2.5);
        assert_eq!(buf.get_u8(), 9);
        assert_eq!(buf.remaining(), 0);
    }
}
