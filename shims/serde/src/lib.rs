//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this workspace vendors a minimal serde-compatible surface: the
//! [`Serialize`] / [`Deserialize`] traits (routed through a self-describing
//! [`Value`] model instead of serde's visitor machinery), derive macros with
//! the same names, and implementations for every std type the workspace
//! serialises. The sibling `serde_json` shim renders [`Value`] to JSON text
//! and back, so `#[derive(Serialize, Deserialize)]` + `serde_json` round-trips
//! work exactly as downstream code expects.
//!
//! Supported surface (kept deliberately small):
//! * structs with named fields, unit structs and tuple structs,
//! * enums with unit, newtype and struct variants (externally tagged, like
//!   serde's default representation),
//! * primitives, `String`, `Vec<T>`, `Option<T>`, fixed-size arrays, tuples
//!   up to arity 4, and `std::time::Duration` (as `{secs, nanos}`).

use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value — the interchange format between the
/// derive macros and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used when the source value is negative).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` address, handed out for missing fields so
/// that `Option` fields deserialise to `None`.
pub const NULL: Value = Value::Null;

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Field access used by generated `Deserialize` impls: missing keys
    /// resolve to `Null` so optional fields degrade gracefully.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(_) => Ok(self.get(key).unwrap_or(&NULL)),
            other => Err(Error::new(format!(
                "expected a map with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Numeric coercion shared by all float/integer `Deserialize` impls.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned coercion (rejects negatives and fractional floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Signed coercion.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Float(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialisation into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a self-describing [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialisation from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Identity serialisation: a [`Value`] is already the interchange form, so
/// documents can be read, edited structurally and re-rendered without a
/// typed schema (read-modify-write of JSON files).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

fn type_error<T>(expected: &str, found: &Value) -> Result<T, Error> {
    Err(Error::new(format!(
        "expected {expected}, found {}",
        found.kind()
    )))
}

// ---- primitives ------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::new(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    )))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::new(format!(
                        "expected integer, found {}",
                        value.kind()
                    )))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round trip through Value is lossless.
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::new(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::new(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_error("single-character string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Supports derived structs carrying `&'static str` labels (e.g. device
    /// names). The string is leaked to obtain the `'static` lifetime; this is
    /// bounded by the number of such deserialisations, which in practice is
    /// zero on hot paths.
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => type_error("string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::new(format!(
                                "expected tuple of length {expected}, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => type_error("tuple sequence", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(value.field("secs")?)?;
        let nanos = u32::from_value(value.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hello".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (3usize, "x".to_string());
        assert_eq!(
            <(usize, String)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(12, 345_678_910);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn missing_fields_resolve_to_null() {
        let map = Value::Map(vec![("a".to_string(), Value::UInt(1))]);
        assert_eq!(map.field("b").unwrap(), &Value::Null);
        assert_eq!(
            Option::<u64>::from_value(map.field("b").unwrap()).unwrap(),
            None
        );
        assert!(u64::from_value(map.field("b").unwrap()).is_err());
    }
}
