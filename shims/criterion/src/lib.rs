//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the builder/macro surface the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) and performs a
//! simple but honest measurement: a warm-up pass followed by `sample_size`
//! timed samples, reporting the median, minimum and maximum time per
//! iteration. No statistics beyond that — the point is that `cargo bench`
//! compiles, runs and prints comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites work (the real crate
/// deprecates its own copy in favour of `std::hint::black_box`).
pub use std::hint::black_box;

/// The benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), 20, &mut f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter, rendered `name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times one sample of `f`, auto-scaling the iteration count so each
    /// sample takes at least ~1 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.iters_per_sample == 0 {
            // Calibrate: grow the iteration count until the sample is long
            // enough to time reliably.
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                let elapsed = start.elapsed();
                if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                    self.iters_per_sample = iters;
                    self.samples_ns
                        .push(elapsed.as_nanos() as f64 / iters as f64);
                    return;
                }
                iters *= 4;
            }
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples_ns
            .push(start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    // Warm-up (also calibrates the per-sample iteration count).
    f(&mut bencher);
    bencher.samples_ns.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut sorted = bencher.samples_ns.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    println!(
        "  {label}: median {} (min {}, max {}, {} samples x {} iters)",
        format_ns(median),
        format_ns(min),
        format_ns(max),
        sorted.len(),
        bencher.iters_per_sample
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
