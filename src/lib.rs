//! `fanns-suite`: the workspace-level package holding the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! The library surface simply re-exports the umbrella [`fanns`] crate so the
//! examples and tests read naturally; all functionality lives in the
//! per-subsystem crates under `crates/`.

pub use fanns::*;

/// Returns the workspace version (shared by every crate).
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::version().is_empty());
    }
}
